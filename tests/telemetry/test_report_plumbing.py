"""TelemetryReport merging, spec folding, and result-store round-trips."""

import dataclasses

from repro.metrics.sweep import run_point, sweep
from repro.sim.checkpoint import ResultStore
from repro.sim.spec import (
    ScenarioSpec,
    execute,
    execution_stats,
    reset_execution_stats,
)
from repro.telemetry import Histogram, TelemetryReport, merge_reports


def _spec(**overrides):
    kwargs = dict(
        design="WBFC-1VC",
        topology="torus:4x4",
        injection_rate=0.2,
        seed=11,
        warmup=100,
        measure=400,
        telemetry=("counters", "histograms"),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestSpecFolding:
    def test_telemetry_in_content_hash(self):
        assert _spec().content_hash() != _spec(telemetry=()).content_hash()
        assert _spec().content_hash() != _spec(telemetry="full").content_hash()

    def test_feature_order_is_canonical(self):
        a = _spec(telemetry=("histograms", "counters"))
        b = _spec(telemetry=("counters", "histograms"))
        assert a == b and a.content_hash() == b.content_hash()

    def test_round_trip(self):
        spec = _spec(telemetry="full")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_full_expansion(self):
        assert _spec(telemetry="full").telemetry == (
            "counters",
            "histograms",
            "timeseries",
            "trace",
        )


class TestStoreRoundTrip:
    def test_warm_summary_equals_cold(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _spec(telemetry="full")
        reset_execution_stats()
        cold = execute(spec, store=store)
        warm = execute(spec, store=store)
        stats = execution_stats()
        assert stats == {"simulated": 1, "cache_hits": 1}
        assert isinstance(warm.telemetry, TelemetryReport)
        assert warm.telemetry.features == cold.telemetry.features
        assert warm.telemetry.counters == cold.telemetry.counters
        assert warm.telemetry.histograms == cold.telemetry.histograms
        assert dataclasses.replace(warm, telemetry=None) == dataclasses.replace(
            cold, telemetry=None
        )

    def test_off_spec_round_trips_without_telemetry(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _spec(telemetry=())
        cold = execute(spec, store=store)
        warm = execute(spec, store=store)
        assert warm == cold and warm.telemetry is None


class TestMergeReports:
    def test_merge_is_order_independent(self):
        reports = [
            execute(_spec(seed=seed)).telemetry for seed in (1, 2, 3)
        ]
        forward = merge_reports(reports)
        backward = merge_reports(reversed(reports))
        assert forward.counters == backward.counters
        assert forward.histograms == backward.histograms

    def test_merge_adds_counters_and_histograms(self):
        a = TelemetryReport(
            features=("counters", "histograms"),
            counters={"router": {"0": {"flits_sent": 2}}, "fc": {"x": 1}},
            histograms={"latency": Histogram(1, [1, 1], 2, 1)},
        )
        b = TelemetryReport(
            features=("counters",),
            counters={"router": {"0": {"flits_sent": 3}, "1": {"va_grants": 4}}},
            histograms={"latency": Histogram(1, [0, 2], 2, 2)},
        )
        m = merge_reports([a, b, None])
        assert m.counters["router"] == {
            "0": {"flits_sent": 5},
            "1": {"va_grants": 4},
        }
        assert m.counters["fc"] == {"x": 1}
        assert m.histograms["latency"] == Histogram(1, [1, 3], 4, 3)
        assert m.features == ("counters", "histograms")
        # Per-run observations do not merge.
        assert m.series == [] and m.trace_events == []


class TestSweepPlumbing:
    def test_run_point_and_sweep_carry_reports(self):
        rates = (0.05, 0.15)
        curve = sweep(
            "WBFC-1VC",
            "torus:4x4",
            "UR",
            list(rates),
            workers=2,
            warmup=100,
            measure=300,
            telemetry=("counters", "histograms"),
        )
        assert [p.injection_rate for p in curve.points] == list(rates)
        merged = curve.merged_telemetry()
        per_point = [p.summary.telemetry for p in curve.points]
        assert all(r is not None for r in per_point)
        assert merged.histograms["latency"].count == sum(
            r.histograms["latency"].count for r in per_point
        )
        # The merged fold equals each worker's counters added pairwise.
        total_sent = sum(
            per.get("flits_sent", 0)
            for r in per_point
            for per in r.counters["router"].values()
        )
        merged_sent = sum(
            per.get("flits_sent", 0) for per in merged.counters["router"].values()
        )
        assert merged_sent == total_sent > 0

    def test_parallel_matches_serial(self):
        kwargs = dict(warmup=100, measure=300, telemetry=("histograms",))
        serial = [
            run_point("WBFC-1VC", "torus:4x4", "UR", r, **kwargs)
            for r in (0.05, 0.15)
        ]
        curve = sweep(
            "WBFC-1VC", "torus:4x4", "UR", [0.05, 0.15], workers=2, **kwargs
        )
        for a, b in zip(serial, (p.summary for p in curve.points)):
            assert a.telemetry.histograms == b.telemetry.histograms
            assert dataclasses.replace(a, telemetry=None) == dataclasses.replace(
                b, telemetry=None
            )
