"""Chrome-trace exporter: schema validity and lifecycle pairing."""

import json

import pytest

from repro.sim.spec import ScenarioSpec, execute, prepare
from repro.telemetry import trace_document, validate_chrome_trace


@pytest.fixture(scope="module")
def traced():
    spec = ScenarioSpec(
        design="WBFC-1VC",
        topology="torus:4x4",
        injection_rate=0.15,
        seed=3,
        warmup=100,
        measure=400,
        telemetry=("trace",),
    )
    prepared = prepare(spec)
    sim = prepared.simulator
    sim.run(spec.warmup + spec.measure)
    return prepared


def test_written_file_passes_validation(tmp_path, traced):
    path = tmp_path / "trace.json"
    count = traced.telemetry.write_chrome_trace(path)
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) == count == len(doc["traceEvents"])
    assert doc["otherData"]["time_unit"] == "cycles"


def test_document_structure(traced):
    doc = trace_document(traced.network, traced.telemetry.trace.events)
    events = doc["traceEvents"]
    phases = {ev["ph"] for ev in events}
    assert phases == {"M", "b", "e", "X"}
    # One process-name metadata record per router.
    meta = [ev for ev in events if ev["ph"] == "M"]
    assert len(meta) == traced.network.topology.num_nodes
    # Every ejection ("e") closes a staging ("b") of the same async id.
    begun = {ev["id"] for ev in events if ev["ph"] == "b"}
    ended = {ev["id"] for ev in events if ev["ph"] == "e"}
    assert ended and ended <= begun
    # Flit spans carry the switch+link duration and non-negative times.
    spans = [ev for ev in events if ev["ph"] == "X"]
    assert spans
    assert all(ev["dur"] == traced.network.config.st_link_delay for ev in spans)


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda d: d.pop("traceEvents"), "traceEvents"),
        (lambda d: d["traceEvents"][0].pop("ts"), "missing 'ts'"),
        (lambda d: d["traceEvents"][0].update(ph="Q"), "unknown phase"),
        (lambda d: d["traceEvents"][0].update(ts=-1), "bad ts"),
        (lambda d: d["traceEvents"].append({"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}), "dur"),
        (lambda d: d["traceEvents"].append({"name": "x", "ph": "b", "ts": 0, "pid": 0, "tid": 0}), "id"),
    ],
)
def test_validation_rejects_malformed(traced, mutate, message):
    doc = trace_document(traced.network, traced.telemetry.trace.events)
    mutate(doc)
    with pytest.raises(ValueError, match=message):
        validate_chrome_trace(doc)


def test_trace_feature_required_for_export(tmp_path):
    spec = ScenarioSpec(
        design="WBFC-1VC",
        topology="torus:4x4",
        warmup=10,
        measure=10,
        telemetry=("counters",),
    )
    prepared = prepare(spec)
    with pytest.raises(RuntimeError):
        prepared.telemetry.write_chrome_trace(tmp_path / "x.json")


def test_execute_carries_trace_events():
    spec = ScenarioSpec(
        design="DL-2VC",
        topology="torus:4x4",
        injection_rate=0.1,
        warmup=50,
        measure=200,
        telemetry=("trace",),
    )
    summary = execute(spec)
    assert summary.telemetry.trace_events
    assert all("ph" in ev for ev in summary.telemetry.trace_events)
