"""The example scripts must at least import and expose a main()."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # guarded by __main__, runs nothing
    assert callable(getattr(module, "main", None))


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "compare_designs",
        "deadlock_demo",
        "ring_topologies",
        "parsec_workload",
    } <= names
