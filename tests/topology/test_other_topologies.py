"""Mesh, ring, and hierarchical-ring topologies."""

import pytest

from repro.topology.base import LOCAL_PORT
from repro.topology.hierarchical_ring import HR_GLOBAL_PORT, HR_LOCAL_PORT, HierarchicalRing
from repro.topology.mesh import Mesh
from repro.topology.ring import RING_FWD_PORT, BidirectionalRing, UnidirectionalRing
from repro.topology.torus import port_index


class TestMesh:
    def test_no_rings(self):
        assert Mesh((4, 4)).rings() == ()

    def test_edges_unconnected(self):
        m = Mesh((4, 4))
        assert m.neighbor(3, port_index(0, +1)) is None  # x edge
        assert m.neighbor(0, port_index(0, -1)) is None
        assert m.neighbor(0, port_index(1, -1)) is None

    def test_interior_neighbors(self):
        m = Mesh((4, 4))
        assert m.neighbor(5, port_index(0, +1)) == (6, port_index(0, +1))

    def test_distance_is_manhattan(self):
        m = Mesh((4, 4))
        assert m.min_distance(0, 15) == 6
        assert m.min_distance(0, 3) == 3

    def test_validate(self):
        Mesh((4, 4)).validate()
        Mesh((3, 5)).validate()


class TestUnidirectionalRing:
    def test_single_ring_covers_all(self):
        r = UnidirectionalRing(8)
        rings = r.rings()
        assert len(rings) == 1
        assert [h.node for h in rings[0].hops] == list(range(8))

    def test_distance_is_forward_only(self):
        r = UnidirectionalRing(8)
        assert r.min_distance(0, 1) == 1
        assert r.min_distance(1, 0) == 7

    def test_validate(self):
        UnidirectionalRing(8).validate()

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            UnidirectionalRing(1)


class TestBidirectionalRing:
    def test_two_rings(self):
        r = BidirectionalRing(6)
        assert len(r.rings()) == 2
        r.validate()

    def test_distance_minimal(self):
        r = BidirectionalRing(8)
        assert r.min_distance(0, 3) == 3
        assert r.min_distance(0, 6) == 2


class TestHierarchicalRing:
    def test_structure(self):
        h = HierarchicalRing(4, 4)
        assert h.num_nodes == 16
        rings = h.rings()
        assert len(rings) == 5  # 4 local + 1 global
        h.validate()

    def test_hubs(self):
        h = HierarchicalRing(4, 4)
        assert [h.hub_of(r) for r in range(4)] == [0, 4, 8, 12]
        assert h.is_hub(0) and not h.is_hub(1)

    def test_global_port_only_at_hubs(self):
        h = HierarchicalRing(4, 4)
        assert h.neighbor(0, HR_GLOBAL_PORT) == (4, HR_GLOBAL_PORT)
        assert h.neighbor(1, HR_GLOBAL_PORT) is None

    def test_min_distance(self):
        h = HierarchicalRing(4, 4)
        # same ring: forward distance
        assert h.min_distance(1, 3) == 2
        # cross-ring: to hub (3 hops from pos 1), 1 global, then local pos
        assert h.min_distance(1, 6) == 3 + 1 + 2

    def test_local_port_unconnected_output(self):
        h = HierarchicalRing(2, 2)
        assert h.neighbor(0, LOCAL_PORT) is None
        assert h.neighbor(1, HR_LOCAL_PORT) == (0, HR_LOCAL_PORT)
