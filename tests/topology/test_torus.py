"""Torus topology: wiring, coordinates, rings, distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.base import LOCAL_PORT
from repro.topology.torus import Torus, port_dim, port_dir, port_index


def test_node_count_and_ports():
    t = Torus((4, 4))
    assert t.num_nodes == 16
    assert t.num_ports == 5  # local + 4 directions


def test_coords_roundtrip():
    t = Torus((4, 8))
    for node in range(t.num_nodes):
        assert t.node_at(t.coords(node)) == node


def test_port_index_helpers():
    assert port_index(0, +1) == 1
    assert port_index(0, -1) == 2
    assert port_index(1, +1) == 3
    for port in range(1, 5):
        assert port_index(port_dim(port), port_dir(port)) == port


def test_neighbor_wraparound():
    t = Torus((4, 4))
    # node 3 = (3, 0); +x neighbor wraps to (0, 0) = node 0
    assert t.neighbor(3, port_index(0, +1)) == (0, port_index(0, +1))
    assert t.neighbor(0, port_index(0, -1)) == (3, port_index(0, -1))


def test_neighbor_local_port_is_unconnected():
    t = Torus((4, 4))
    assert t.neighbor(0, LOCAL_PORT) is None


def test_validate_passes():
    Torus((4, 4)).validate()
    Torus((8, 8)).validate()
    Torus((2, 3, 4)).validate()


def test_ring_count_2d():
    # per dimension: 2 directions x k lines
    t = Torus((4, 4))
    assert len(t.rings()) == 2 * 2 * 4


def test_ring_membership_covers_every_channel_once():
    t = Torus((4, 4))
    seen = set()
    for ring in t.rings():
        for hop in ring.hops:
            key = (hop.node, hop.out_port)
            assert key not in seen, "channel in two rings"
            seen.add(key)
    # every non-local channel belongs to exactly one ring
    assert len(seen) == len(t.channels())


def test_ring_traversal_consistency():
    t = Torus((4, 8))
    for ring in t.rings():
        for i, hop in enumerate(ring.hops):
            nxt = ring.hops[(i + 1) % len(ring)]
            assert t.neighbor(hop.node, hop.out_port) == (nxt.node, nxt.in_port)


def test_min_distance_symmetric_and_bounded():
    t = Torus((4, 4))
    for a in range(16):
        for b in range(16):
            d = t.min_distance(a, b)
            assert d == t.min_distance(b, a)
            assert 0 <= d <= 4  # 2 + 2 for a 4x4 torus
            assert (d == 0) == (a == b)


def test_dimension_offset_minimal():
    t = Torus((4, 4))
    # from x=0 to x=3: minimal is -1 (wrap backward)
    assert t.dimension_offset(0, 3, 0) == -1
    # from x=0 to x=2: tie at 2; deterministic positive
    assert t.dimension_offset(0, 2, 0) == 2
    assert t.dimension_offset(0, 0, 1) == 0


def test_rejects_degenerate():
    with pytest.raises(ValueError):
        Torus(())
    with pytest.raises(ValueError):
        Torus((1, 4))


@settings(max_examples=50, deadline=None)
@given(
    radices=st.lists(st.integers(min_value=2, max_value=6), min_size=1, max_size=3),
    data=st.data(),
)
def test_offset_reaches_destination(radices, data):
    """Applying per-dimension offsets from src always lands on dst."""
    t = Torus(tuple(radices))
    src = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    dst = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    coords = list(t.coords(src))
    for dim, k in enumerate(radices):
        coords[dim] = (coords[dim] + t.dimension_offset(src, dst, dim)) % k
    assert t.node_at(tuple(coords)) == dst


@settings(max_examples=50, deadline=None)
@given(
    radices=st.lists(st.integers(min_value=2, max_value=6), min_size=1, max_size=3),
    data=st.data(),
)
def test_min_distance_equals_offset_sum(radices, data):
    t = Torus(tuple(radices))
    src = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    dst = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    total = sum(abs(t.dimension_offset(src, dst, d)) for d in range(t.num_dims))
    assert total == t.min_distance(src, dst)
