"""The closed-loop PARSEC-substitute workload."""

import pytest

from repro.sim.deadlock import Watchdog
from repro.sim.engine import Simulator
from repro.topology.torus import Torus
from repro.traffic.parsec import PARSEC_PROFILES, CoherenceWorkload, _mix
from tests.conftest import make_torus_network


def test_profiles_cover_the_papers_benchmarks():
    expected = {
        "blackscholes",
        "bodytrack",
        "canneal",
        "dedup",
        "ferret",
        "fluidanimate",
        "raytrace",
        "swaptions",
        "vips",
        "x264",
    }
    assert set(PARSEC_PROFILES) == expected


def test_mix_is_deterministic_and_uniform():
    draws = [_mix(c, t, 1) for c in range(16) for t in range(100)]
    assert all(0 <= d < 1 for d in draws)
    assert draws == [_mix(c, t, 1) for c in range(16) for t in range(100)]
    assert 0.4 < sum(1 for d in draws if d < 0.5) / len(draws) < 0.6


def test_memory_controllers_at_corners():
    net = make_torus_network("WBFC-1VC")
    wl = CoherenceWorkload(net, "dedup", transactions_per_core=10)
    topo = net.topology
    assert sorted(wl.memory_controllers) == sorted(
        topo.node_at(c) for c in [(0, 0), (3, 0), (0, 3), (3, 3)]
    )


def test_runs_to_completion_and_counts_transactions():
    net = make_torus_network("WBFC-1VC")
    wl = CoherenceWorkload(net, "swaptions", transactions_per_core=25, seed=11)
    sim = Simulator(net, wl, watchdog=Watchdog(net, deadlock_window=50_000))
    cycles = wl.run_to_completion(sim, max_cycles=500_000)
    assert cycles > 0
    assert all(c == 25 for c in wl.completed)
    assert all(o == 0 for o in wl.outstanding)


def test_execution_time_deterministic_per_design():
    def run():
        net = make_torus_network("DL-2VC")
        wl = CoherenceWorkload(net, "dedup", transactions_per_core=20, seed=11)
        sim = Simulator(net, wl, watchdog=Watchdog(net, deadlock_window=50_000))
        return wl.run_to_completion(sim, max_cycles=500_000)

    assert run() == run()


def test_transaction_shapes_identical_across_designs():
    """The protocol DAG must not depend on the network being measured."""

    def homes(design):
        net = make_torus_network(design)
        wl = CoherenceWorkload(net, "canneal", transactions_per_core=5, seed=11)
        return [wl.home_of(core, t) for core in range(16) for t in range(5)]

    assert homes("WBFC-1VC") == homes("DL-3VC")


def test_window_limits_outstanding():
    net = make_torus_network("WBFC-1VC")
    wl = CoherenceWorkload(net, "dedup", transactions_per_core=50, window=2, seed=3)
    sim = Simulator(net, wl, watchdog=Watchdog(net, deadlock_window=50_000))

    def check(cycle):
        assert all(o <= 2 for o in wl.outstanding)

    sim.cycle_listeners.append(check)
    sim.run(3_000)


def test_network_bound_benchmark_sensitive_to_design():
    """dedup (network-heavy) must run faster on a better network."""

    def time_on(design):
        net = make_torus_network(design)
        wl = CoherenceWorkload(net, "dedup", transactions_per_core=60, seed=11)
        sim = Simulator(net, wl, watchdog=Watchdog(net, deadlock_window=50_000))
        return wl.run_to_completion(sim, max_cycles=1_000_000)

    slow = time_on("WBFC-1VC")
    fast = time_on("WBFC-3VC")
    assert fast < slow


def test_unknown_benchmark_rejected():
    net = make_torus_network("WBFC-1VC")
    with pytest.raises(KeyError):
        CoherenceWorkload(net, "quake")
