"""Coherence-protocol plumbing of the PARSEC substitute."""

from repro.network.network import Network
from repro.routing.ring_routing import RingRouting
from repro.sim.config import SimulationConfig
from repro.sim.deadlock import Watchdog
from repro.sim.engine import Simulator
from repro.topology.ring import UnidirectionalRing
from repro.core.wbfc import WormBubbleFlowControl
from repro.traffic.parsec import (
    FORWARD,
    MEM_REQUEST,
    REQUEST,
    RESPONSE,
    CoherenceWorkload,
)
from tests.conftest import make_torus_network


def test_message_class_mix_matches_profile():
    """canneal: ~30% forwards, ~35% memory trips among requests."""
    net = make_torus_network("DL-3VC")
    wl = CoherenceWorkload(net, "canneal", transactions_per_core=40, seed=11)
    classes = []
    net.probes.subscribe("packet_ejected", lambda p, c: classes.append(p.cls))
    sim = Simulator(net, wl, watchdog=Watchdog(net, deadlock_window=100_000))
    wl.run_to_completion(sim, max_cycles=400_000)
    requests = classes.count(REQUEST)
    forwards = classes.count(FORWARD)
    mems = classes.count(MEM_REQUEST)
    responses = classes.count(RESPONSE)
    assert responses >= requests * 0.5  # every txn ends in a response
    # protocol mix within generous statistical bounds
    assert 0.15 < forwards / max(requests, 1) < 0.50
    assert 0.20 < mems / max(requests, 1) < 0.55


def test_responses_are_long_requests_short():
    net = make_torus_network("DL-3VC")
    wl = CoherenceWorkload(net, "dedup", transactions_per_core=20, seed=11)
    lengths = {}
    net.probes.subscribe("packet_ejected", lambda p, c: lengths.setdefault(p.cls, set()).add(p.length))
    sim = Simulator(net, wl, watchdog=Watchdog(net, deadlock_window=100_000))
    wl.run_to_completion(sim, max_cycles=400_000)
    assert lengths[REQUEST] == {1}
    assert lengths[RESPONSE] == {5}


def test_memory_latency_delays_responses():
    """A response behind a memory miss arrives >= memory_latency later."""
    fast = make_torus_network("DL-3VC")
    slow = make_torus_network("DL-3VC")
    t_fast = CoherenceWorkload(fast, "canneal", transactions_per_core=15, seed=11, memory_latency=10)
    t_slow = CoherenceWorkload(slow, "canneal", transactions_per_core=15, seed=11, memory_latency=300)
    for net, wl in ((fast, t_fast), (slow, t_slow)):
        sim = Simulator(net, wl, watchdog=Watchdog(net, deadlock_window=200_000))
        wl.run_to_completion(sim, max_cycles=600_000)
    assert t_slow.finished_cycle > t_fast.finished_cycle


def test_corner_fallback_on_non_grid_topology():
    ring = UnidirectionalRing(9)
    net = Network(
        ring, RingRouting(ring), WormBubbleFlowControl(), SimulationConfig(num_vcs=1)
    )
    wl = CoherenceWorkload(net, "swaptions", transactions_per_core=1)
    assert len(wl.memory_controllers) == 4
    assert all(0 <= n < 9 for n in wl.memory_controllers)
