"""Traffic patterns, length distributions and the open-loop generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import make_rng
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus
from repro.traffic.lengths import BimodalLength, FixedLength
from repro.traffic.patterns import (
    PATTERNS,
    BitComplement,
    BitReverse,
    Hotspot,
    NearestNeighbor,
    Tornado,
    Transpose,
    UniformRandom,
    make_pattern,
)


@pytest.fixture
def rng():
    return make_rng(7)


class TestPatterns:
    def test_uniform_random_never_self(self, torus44, rng):
        ur = UniformRandom(torus44)
        for src in range(16):
            for _ in range(50):
                assert ur.dest(src, rng) != src

    def test_uniform_random_covers_all_destinations(self, torus44, rng):
        ur = UniformRandom(torus44)
        seen = {ur.dest(0, rng) for _ in range(2_000)}
        assert seen == set(range(1, 16))

    def test_transpose_swaps_coordinates(self, torus44, rng):
        tp = Transpose(torus44)
        src = torus44.node_at((1, 3))
        assert tp.dest(src, rng) == torus44.node_at((3, 1))

    def test_transpose_diagonal_generates_nothing(self, torus44, rng):
        tp = Transpose(torus44)
        assert tp.dest(torus44.node_at((2, 2)), rng) is None

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            Transpose(Torus((4, 8)))

    def test_bit_complement(self, torus44, rng):
        bc = BitComplement(torus44)
        assert bc.dest(0, rng) == 15
        assert bc.dest(5, rng) == 10

    def test_bit_complement_requires_power_of_two(self):
        with pytest.raises(ValueError):
            BitComplement(Torus((3, 3)))

    def test_tornado_shift(self, rng):
        t8 = Torus((8, 8))
        to = Tornado(t8)
        src = t8.node_at((0, 0))
        assert to.dest(src, rng) == t8.node_at((3, 3))  # ceil(8/2)-1 = 3

    def test_tornado_4ary(self, torus44, rng):
        to = Tornado(torus44)
        assert to.dest(torus44.node_at((0, 0)), rng) == torus44.node_at((1, 1))

    def test_bit_reverse(self, rng):
        t = Torus((4, 4))
        br = BitReverse(t)
        assert br.dest(1, rng) == 8  # 0001 -> 1000

    def test_hotspot_bias(self, torus44, rng):
        hs = Hotspot(torus44, hotspots=(5,), fraction=0.5)
        hits = sum(1 for _ in range(2_000) if hs.dest(0, rng) == 5)
        assert 700 < hits < 1_400

    def test_nearest_neighbor_distance_one(self, torus44, rng):
        nn = NearestNeighbor(torus44)
        for _ in range(200):
            d = nn.dest(6, rng)
            assert d is not None and torus44.min_distance(6, d) == 1

    def test_nearest_neighbor_mesh_edges_clamp(self, rng):
        nn = NearestNeighbor(Mesh((4, 4)))
        for _ in range(200):
            d = nn.dest(0, rng)
            assert d is None or d in (1, 4)

    def test_registry(self, torus44):
        for name in PATTERNS:
            make_pattern(name, torus44)
        with pytest.raises(ValueError):
            make_pattern("nope", torus44)


class TestLengths:
    def test_fixed(self, rng):
        d = FixedLength(5)
        assert d.mean == 5 and d.max_length == 5
        assert all(d.draw(rng) == 5 for _ in range(10))

    def test_bimodal_mean_and_values(self, rng):
        d = BimodalLength(short=1, long=5, long_fraction=0.5)
        assert d.mean == 3.0 and d.max_length == 5
        draws = [d.draw(rng) for _ in range(4_000)]
        assert set(draws) == {1, 5}
        assert 0.45 < draws.count(5) / len(draws) < 0.55

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BimodalLength(long_fraction=1.5)
        with pytest.raises(ValueError):
            BimodalLength(short=3, long=2)
        with pytest.raises(ValueError):
            FixedLength(0)

    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_bimodal_mean_formula(self, frac):
        d = BimodalLength(short=1, long=5, long_fraction=frac)
        assert d.mean == pytest.approx(1 + 4 * frac)


class TestGenerator:
    def test_rate_realized(self, torus44):
        from repro.traffic.generator import SyntheticTraffic

        class Sink:
            def __init__(self):
                self.flits = 0

            def offer(self, p):
                self.flits += p.length
                return True

        class FakeNet:
            topology = torus44
            nics = [Sink() for _ in range(16)]

        wl = SyntheticTraffic(UniformRandom(torus44), 0.2, seed=5)
        net = FakeNet()
        cycles = 5_000
        for c in range(cycles):
            wl.step(c, net)
        total = sum(n.flits for n in net.nics)
        realized = total / (16 * cycles)
        assert 0.18 < realized < 0.22

    def test_deterministic_given_seed(self, torus44):
        from repro.traffic.generator import SyntheticTraffic

        def trace(seed):
            wl = SyntheticTraffic(UniformRandom(torus44), 0.3, seed=seed)
            out = []

            class FakeNet:
                topology = torus44

                class _N:
                    def __init__(s):
                        pass

                nics = None

            class Rec:
                def offer(self, p):
                    out.append((p.src, p.dst, p.length))
                    return True

            FakeNet.nics = [Rec() for _ in range(16)]
            for c in range(200):
                wl.step(c, FakeNet())
            return out

        assert trace(9) == trace(9)
        assert trace(9) != trace(10)
