"""Trace record/replay."""

import pytest

from repro.sim.deadlock import Watchdog
from repro.sim.engine import Simulator
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import UniformRandom
from repro.traffic.trace import Trace, TraceEntry, TraceRecorder
from tests.conftest import make_torus_network


def test_entries_replay_at_their_cycles():
    net = make_torus_network("DL-2VC")
    trace = Trace([TraceEntry(5, 0, 3, 5), TraceEntry(5, 1, 2, 1), TraceEntry(9, 2, 7, 5)])
    sim = Simulator(net, trace, watchdog=Watchdog(net, deadlock_window=10_000))
    sim.run(200)
    assert trace.exhausted
    assert net.packets_ejected == 3


def test_out_of_order_append_rejected():
    trace = Trace([TraceEntry(5, 0, 1, 1)])
    with pytest.raises(ValueError):
        trace.append(TraceEntry(3, 0, 1, 1))


def test_save_load_roundtrip(tmp_path):
    trace = Trace([TraceEntry(1, 0, 3, 5), TraceEntry(4, 2, 1, 1, cls=2)])
    path = tmp_path / "trace.json"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.entries == trace.entries


def test_recorder_captures_synthetic_traffic():
    net = make_torus_network("DL-2VC")
    inner = SyntheticTraffic(UniformRandom(net.topology), 0.1, seed=5)
    recorder = TraceRecorder(inner)
    sim = Simulator(net, recorder, watchdog=Watchdog(net, deadlock_window=10_000))
    sim.run(500)
    assert len(recorder.trace.entries) == inner.packets_created
    assert recorder.trace.entries == sorted(recorder.trace.entries, key=lambda e: e.cycle)


def test_replay_reproduces_offered_load_exactly():
    """Record on one design, replay on another: identical offered stream."""
    net_a = make_torus_network("DL-2VC")
    inner = SyntheticTraffic(UniformRandom(net_a.topology), 0.1, seed=5)
    recorder = TraceRecorder(inner)
    Simulator(net_a, recorder, watchdog=Watchdog(net_a, deadlock_window=10_000)).run(500)

    offered = []
    net_b = make_torus_network("WBFC-1VC")
    for nic in net_b.nics:
        original = nic.offer

        def spy(packet, original=original):
            offered.append((packet.src, packet.dst, packet.length))
            return original(packet)

        nic.offer = spy
    trace = recorder.trace
    trace.reset()
    Simulator(net_b, trace, watchdog=Watchdog(net_b, deadlock_window=10_000)).run(500)
    assert offered == [(e.src, e.dst, e.length) for e in trace.entries]
